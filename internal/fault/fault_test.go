package fault

import (
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"rates in range", Plan{CrashRate: 0.5, RecoverRate: 1, ProposalLoss: 0.1, ConnLoss: 0.2, TagFlipRate: 0.3}, true},
		{"negative rate", Plan{CrashRate: -0.1}, false},
		{"rate above one", Plan{ProposalLoss: 1.5}, false},
		{"scripted ok", Plan{Crashes: []NodeRound{{Round: 3, Node: 7}}}, true},
		{"crash round zero", Plan{Crashes: []NodeRound{{Round: 0, Node: 0}}}, false},
		{"crash node out of range", Plan{Crashes: []NodeRound{{Round: 1, Node: 8}}}, false},
		{"recovery node negative", Plan{Recoveries: []NodeRound{{Round: 1, Node: -1}}}, false},
		{"crash then recovery", Plan{Crashes: []NodeRound{{Round: 2, Node: 3}},
			Recoveries: []NodeRound{{Round: 4, Node: 3}}}, true},
		{"recovery without crash", Plan{Recoveries: []NodeRound{{Round: 4, Node: 3}}}, false},
		{"recovery before crash", Plan{Crashes: []NodeRound{{Round: 5, Node: 3}},
			Recoveries: []NodeRound{{Round: 4, Node: 3}}}, false},
		{"recovery at crash round", Plan{Crashes: []NodeRound{{Round: 4, Node: 3}},
			Recoveries: []NodeRound{{Round: 4, Node: 3}}}, false},
		{"recovery of other crashed node", Plan{Crashes: []NodeRound{{Round: 2, Node: 1}},
			Recoveries: []NodeRound{{Round: 4, Node: 3}}}, false},
		{"duplicate crash entry", Plan{Crashes: []NodeRound{{Round: 2, Node: 3}, {Round: 2, Node: 3}}}, false},
		{"same node crashes twice at different rounds", Plan{Crashes: []NodeRound{
			{Round: 2, Node: 3}, {Round: 6, Node: 3}}, Recoveries: []NodeRound{{Round: 4, Node: 3}}}, true},
		{"corruption ok", Plan{Corruptions: []Burst{{Round: 2, Nodes: []int{0, 7}}}}, true},
		{"corruption empty", Plan{Corruptions: []Burst{{Round: 2}}}, false},
		{"corruption node out of range", Plan{Corruptions: []Burst{{Round: 2, Nodes: []int{8}}}}, false},
		{"maxdown negative", Plan{MaxDown: -1}, false},
		{"maxdown at n", Plan{MaxDown: 8}, true},
		{"maxdown above n", Plan{MaxDown: 9}, false},
		{"partition ok", Plan{Partitions: []Partition{{Start: 3, Heal: 9, Parts: 2}}}, true},
		{"partition never heals", Plan{Partitions: []Partition{{Start: 3, Heal: 0, Parts: 3}}}, true},
		{"partition start zero", Plan{Partitions: []Partition{{Start: 0, Heal: 9, Parts: 2}}}, false},
		{"partition heals before start", Plan{Partitions: []Partition{{Start: 5, Heal: 5, Parts: 2}}}, false},
		{"partition one part", Plan{Partitions: []Partition{{Start: 3, Parts: 1}}}, false},
		{"partition more parts than nodes", Plan{Partitions: []Partition{{Start: 3, Parts: 9}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(8)
			if (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	if _, err := NewInjector(Plan{}, 0); err == nil {
		t.Error("NewInjector accepted n=0")
	}
}

func TestEnabled(t *testing.T) {
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	for _, p := range []Plan{
		{CrashRate: 0.1},
		{RecoverRate: 0.1},
		{ProposalLoss: 0.1},
		{ConnLoss: 0.1},
		{TagFlipRate: 0.1},
		{Crashes: []NodeRound{{Round: 1, Node: 0}}},
		{Recoveries: []NodeRound{{Round: 1, Node: 0}}},
		{Corruptions: []Burst{{Round: 1, Nodes: []int{0}}}},
		{Partitions: []Partition{{Start: 1, Parts: 2}}},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestScriptedChurn(t *testing.T) {
	plan := Plan{
		Crashes:    []NodeRound{{Round: 2, Node: 3}, {Round: 2, Node: 1}, {Round: 5, Node: 1}},
		Recoveries: []NodeRound{{Round: 4, Node: 1}, {Round: 4, Node: 3}},
	}
	in, err := NewInjector(plan, 8)
	if err != nil {
		t.Fatal(err)
	}

	in.BeginRound(1)
	if in.DownMask() != nil || in.DownCount() != 0 {
		t.Fatal("round 1: nodes down before any scripted crash")
	}

	in.BeginRound(2)
	if got := in.NewlyDown(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("round 2 NewlyDown = %v, want [1 3] (ascending)", got)
	}
	if !in.Down(1) || !in.Down(3) || in.Down(0) || in.DownCount() != 2 {
		t.Fatalf("round 2 down state wrong")
	}
	mask := in.DownMask()
	if mask == nil || !mask[1] || !mask[3] || mask[0] {
		t.Fatalf("round 2 DownMask = %v", mask)
	}

	in.BeginRound(3)
	if len(in.NewlyDown()) != 0 || len(in.NewlyRecovered()) != 0 || in.DownCount() != 2 {
		t.Fatal("round 3: churn fired without scripted events or rates")
	}

	in.BeginRound(4)
	if got := in.NewlyRecovered(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("round 4 NewlyRecovered = %v, want [1 3]", got)
	}
	if in.DownMask() != nil {
		t.Fatal("round 4: mask non-nil after full recovery")
	}

	// Re-crash of node 1 at round 5 works; crash of a down node is a no-op.
	in.BeginRound(5)
	if got := in.NewlyDown(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("round 5 NewlyDown = %v, want [1]", got)
	}
	in2, _ := NewInjector(Plan{Crashes: []NodeRound{{Round: 1, Node: 0}, {Round: 2, Node: 0}}}, 4)
	in2.BeginRound(1)
	in2.BeginRound(2)
	if len(in2.NewlyDown()) != 0 || in2.DownCount() != 1 {
		t.Error("double crash of the same node was not a no-op")
	}
}

func TestChurnDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, CrashRate: 0.2, RecoverRate: 0.5}
	run := func() ([]int, []int) {
		in, err := NewInjector(plan, 64)
		if err != nil {
			t.Fatal(err)
		}
		var downs, recovers []int
		for r := 1; r <= 200; r++ {
			in.BeginRound(r)
			for _, u := range in.NewlyDown() {
				downs = append(downs, r*1000+int(u))
			}
			for _, u := range in.NewlyRecovered() {
				recovers = append(recovers, r*1000+int(u))
			}
		}
		return downs, recovers
	}
	d1, r1 := run()
	d2, r2 := run()
	if len(d1) == 0 {
		t.Fatal("no crashes at CrashRate 0.2 over 200 rounds")
	}
	if len(r1) == 0 {
		t.Fatal("no recoveries at RecoverRate 0.5")
	}
	if !equalInts(d1, d2) || !equalInts(r1, r2) {
		t.Error("same plan produced different churn across runs")
	}

	// A different fault seed produces a different pattern.
	other := plan
	other.Seed = 100
	in, _ := NewInjector(other, 64)
	var d3 []int
	for r := 1; r <= 200; r++ {
		in.BeginRound(r)
		for _, u := range in.NewlyDown() {
			d3 = append(d3, r*1000+int(u))
		}
	}
	if equalInts(d1, d3) {
		t.Error("different fault seeds produced identical churn")
	}
}

func TestMaxDownCap(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 7, CrashRate: 1, MaxDown: 3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	in.BeginRound(1)
	if in.DownCount() != 3 {
		t.Errorf("DownCount = %d, want capped at 3", in.DownCount())
	}
	// MaxDown boundary: a cap of n lets churn take the whole network down.
	inAll, _ := NewInjector(Plan{Seed: 7, CrashRate: 1, MaxDown: 16}, 16)
	inAll.BeginRound(1)
	if inAll.DownCount() != 16 {
		t.Errorf("MaxDown = n: DownCount = %d, want 16", inAll.DownCount())
	}
	// Scripted crashes are exempt from the cap.
	in2, _ := NewInjector(Plan{Seed: 7, CrashRate: 1, MaxDown: 1,
		Crashes: []NodeRound{{Round: 1, Node: 4}, {Round: 1, Node: 5}}}, 16)
	in2.BeginRound(1)
	if !in2.Down(4) || !in2.Down(5) {
		t.Error("scripted crashes were blocked by MaxDown")
	}
}

func TestDropAndFlipDeterminism(t *testing.T) {
	plan := Plan{Seed: 5, ProposalLoss: 0.3, ConnLoss: 0.2, TagFlipRate: 0.4}
	run := func() []uint64 {
		in, err := NewInjector(plan, 8)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for r := 1; r <= 50; r++ {
			in.BeginRound(r)
			for u := int32(0); u < 8; u++ {
				tag, flipped := in.FlipTag(u, r, 3, uint64(u))
				if flipped {
					got = append(got, uint64(r)<<32|tag)
				}
				if in.DropProposal(u, r) {
					got = append(got, uint64(r)<<16|uint64(u))
				}
				if in.DropConnection(u, (u+1)%8, r) {
					got = append(got, uint64(r)<<8|uint64(u))
				}
			}
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults drawn at high rates")
	}
	if len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs", i)
		}
	}
}

// TestDrawsAreOrderIndependent pins the property the parallel round core
// rests on: a per-node draw's outcome depends only on (plan seed, kind,
// node, round) — evaluating draws in reverse order, skipping nodes, or
// interleaving kinds never changes any verdict.
func TestDrawsAreOrderIndependent(t *testing.T) {
	plan := Plan{Seed: 41, ProposalLoss: 0.4, ConnLoss: 0.3, TagFlipRate: 0.5}
	const n, rounds = 32, 20
	in, err := NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}

	type verdicts struct {
		drop, conn bool
		tag        uint64
		flipped    bool
	}
	forward := make([][]verdicts, rounds+1)
	for r := 1; r <= rounds; r++ {
		in.BeginRound(r)
		forward[r] = make([]verdicts, n)
		for u := int32(0); u < n; u++ {
			v := &forward[r][int(u)]
			v.drop = in.DropProposal(u, r)
			v.conn = in.DropConnection(u, (u+3)%n, r)
			v.tag, v.flipped = in.FlipTag(u, r, 4, uint64(u)%16)
		}
	}

	// Second injector: descending node order, kinds interleaved differently,
	// odd nodes queried twice and even rounds partially skipped.
	in2, err := NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	for r := rounds; r >= 1; r-- {
		in2.BeginRound(r)
		for u := int32(n - 1); u >= 0; u-- {
			if r%2 == 0 && u%4 == 0 {
				continue // skipped draws must not shift anyone else's
			}
			want := forward[r][int(u)]
			if u%2 == 1 {
				_ = in2.DropProposal(u, r) // replay: draws are idempotent
			}
			tag, flipped := in2.FlipTag(u, r, 4, uint64(u)%16)
			if got := in2.DropProposal(u, r); got != want.drop {
				t.Fatalf("round %d node %d: DropProposal %v out of order, want %v", r, u, got, want.drop)
			}
			if got := in2.DropConnection(u, (u+3)%n, r); got != want.conn {
				t.Fatalf("round %d node %d: DropConnection %v out of order, want %v", r, u, got, want.conn)
			}
			if tag != want.tag || flipped != want.flipped {
				t.Fatalf("round %d node %d: FlipTag (%d, %v) out of order, want (%d, %v)",
					r, u, tag, flipped, want.tag, want.flipped)
			}
		}
	}
}

func TestFlipTagStaysInRange(t *testing.T) {
	in, _ := NewInjector(Plan{Seed: 3, TagFlipRate: 1}, 256)
	in.BeginRound(1)
	const bits = 4
	for u := int32(0); u < 100; u++ {
		tag, flipped := in.FlipTag(u, 1, bits, 0b1010)
		if !flipped {
			t.Fatal("TagFlipRate 1 did not flip")
		}
		if tag >= 1<<bits {
			t.Fatalf("flipped tag %#x exceeds %d bits", tag, bits)
		}
		if tag == 0b1010 {
			t.Fatal("flip produced the original tag")
		}
	}
	// Zero tag bits (no advertisements) can never flip.
	if _, flipped := in.FlipTag(0, 1, 0, 0); flipped {
		t.Error("flip with 0 tag bits")
	}
}

func TestZeroRatesConsumeNoDraws(t *testing.T) {
	// Zero-rate plans draw nothing: the query methods return their no-fault
	// verdicts without touching any stream, so adding unused knobs can never
	// perturb existing runs — and the state-reset streams are untouched by
	// any number of interleaved queries.
	in, _ := NewInjector(Plan{Seed: 11, Crashes: []NodeRound{{Round: 1, Node: 0}}}, 4)
	in.BeginRound(1)
	before := in.StateRNG(0, 1).Uint64()
	in.BeginRound(1) // replay the round
	if in.DropProposal(1, 1) || in.DropConnection(1, 2, 1) {
		t.Fatal("zero-rate drop fired")
	}
	if _, flipped := in.FlipTag(1, 1, 3, 1); flipped {
		t.Fatal("zero-rate flip fired")
	}
	if got := in.StateRNG(0, 1).Uint64(); got != before {
		t.Error("zero-rate queries perturbed the state-reset stream")
	}
}

func TestStateRNGIsNodeAddressed(t *testing.T) {
	in, _ := NewInjector(Plan{Seed: 11, Corruptions: []Burst{{Round: 1, Nodes: []int{0, 1}}}}, 4)
	in.BeginRound(1)
	a01 := in.StateRNG(0, 1).Uint64()
	a11 := in.StateRNG(1, 1).Uint64()
	a02 := in.StateRNG(0, 2).Uint64()
	if a01 == a11 || a01 == a02 {
		t.Error("StateRNG streams for distinct (node, round) collide")
	}
	if got := in.StateRNG(0, 1).Uint64(); got != a01 {
		t.Error("StateRNG is not a pure function of (node, round)")
	}
}

// TestCorruptTargets pins that burst targets come back in ascending node
// order regardless of plan declaration order — corruptAt is map-backed, and
// map iteration order must never leak into results.
func TestCorruptTargets(t *testing.T) {
	in, err := NewInjector(Plan{Corruptions: []Burst{
		{Round: 3, Nodes: []int{5, 1}},
		{Round: 3, Nodes: []int{2}},
		{Round: 7, Nodes: []int{0}},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CorruptTargets(2); got != nil {
		t.Errorf("round 2 targets = %v, want nil", got)
	}
	got := in.CorruptTargets(3)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("round 3 targets = %v, want [1 2 5]", got)
	}
	if got := in.CorruptTargets(7); len(got) != 1 || got[0] != 0 {
		t.Errorf("round 7 targets = %v", got)
	}

	// Reversed declaration order (and reversed node lists) must produce the
	// identical ascending target lists.
	rev, err := NewInjector(Plan{Corruptions: []Burst{
		{Round: 7, Nodes: []int{0}},
		{Round: 3, Nodes: []int{2}},
		{Round: 3, Nodes: []int{1, 5}},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{2, 3, 7} {
		a, b := in.CorruptTargets(r), rev.CorruptTargets(r)
		if len(a) != len(b) {
			t.Fatalf("round %d: %v vs %v", r, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: declaration order leaked: %v vs %v", r, a, b)
			}
		}
	}
}

func TestPartitionCut(t *testing.T) {
	plan := Plan{Seed: 17, Partitions: []Partition{{Start: 4, Heal: 10, Parts: 2}}}
	const n = 64
	in, err := NewInjector(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	// Find one cut pair and one same-side pair via CutEdge during the window.
	cutU, cutV, sameU, sameV := int32(-1), int32(-1), int32(-1), int32(-1)
	for v := int32(1); v < n; v++ {
		if in.CutEdge(0, v, 5) {
			cutU, cutV = 0, v
		} else {
			sameU, sameV = 0, v
		}
	}
	if cutU < 0 || sameU < 0 {
		t.Fatal("partition did not split node 0's pairs into both sides")
	}
	for r := 1; r <= 12; r++ {
		in.BeginRound(r)
		live := r >= 4 && r < 10
		if got := in.CutEdge(cutU, cutV, r); got != live {
			t.Errorf("round %d: CutEdge(%d, %d) = %v, want %v", r, cutU, cutV, got, live)
		}
		if in.CutEdge(sameU, sameV, r) {
			t.Errorf("round %d: same-component pair reported cut", r)
		}
		// DropConnection folds the cut in deterministically (ConnLoss = 0,
		// so any true verdict is the partition).
		if got := in.DropConnection(cutU, cutV, r); got != live {
			t.Errorf("round %d: DropConnection on cut edge = %v, want %v", r, got, live)
		}
		if in.DropConnection(sameU, sameV, r) {
			t.Errorf("round %d: DropConnection fired on same-component edge with zero ConnLoss", r)
		}
	}
	// Symmetry and determinism of the component assignment.
	in2, _ := NewInjector(plan, n)
	for v := int32(1); v < n; v++ {
		if in.CutEdge(0, v, 5) != in.CutEdge(v, 0, 5) {
			t.Fatalf("CutEdge(0, %d) is asymmetric", v)
		}
		if in.CutEdge(0, v, 5) != in2.CutEdge(0, v, 5) {
			t.Fatalf("component assignment not deterministic for node %d", v)
		}
	}
	// A never-healing partition stays cut arbitrarily far out.
	never, _ := NewInjector(Plan{Seed: 17, Partitions: []Partition{{Start: 2, Parts: 2}}}, n)
	cut := false
	for v := int32(1); v < n; v++ {
		cut = cut || never.CutEdge(0, v, 1_000_000)
	}
	if !cut {
		t.Error("Heal = 0 partition healed")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
