// Package fault is the simulator's deterministic fault-injection layer: a
// seed-derived Plan of crashes, recoveries, message loss, advertisement
// corruption, and adversarial state resets, compiled into an Injector the
// engine consults at fixed points of each round.
//
// Design constraints, in priority order:
//
//  1. Determinism. Every fault draw comes from a dedicated per-round RNG
//     stream derived from (Plan.Seed, round) — never from the node streams —
//     so a faulted execution is a pure function of (seed, schedule, protocol,
//     config, plan), at any worker count. The engine consumes draws only in
//     its sequential sections, in a fixed documented order per round: churn
//     (ascending node), tag flips (ascending active node), proposal drops
//     (ascending proposer), connection drops (ascending receiver). Rates of
//     zero consume no draws, so adding an unused knob never perturbs runs.
//  2. Composability. Faults stack on top of any schedule: a crashed node is
//     treated exactly like a node outside its activation window (invisible,
//     no callbacks), and recovers into whatever topology the schedule then
//     prescribes.
//  3. Zero cost when absent. A nil *Injector in sim.Config adds only
//     nil-checks to the round loop; the fault-free steady state stays at
//     0 allocs/round (TestSteadyStateZeroAllocs).
//
// The Injector is single-run state: build one per engine with NewInjector
// and do not share or reuse it across runs.
package fault

import (
	"fmt"
	"sort"

	"mobiletel/internal/xrand"
)

// faultStream salts the per-round fault RNG stream so it can never collide
// with the engine's per-(node, round) streams.
const faultStream = 0xfa171

// NodeRound schedules a scripted fault for one node at the start of one
// round (rounds are 1-based, matching the engine).
type NodeRound struct {
	Round int
	Node  int
}

// Burst schedules an adversarial state reset of a set of nodes at the start
// of one round — the Section VIII self-stabilization adversary: corrupted
// nodes forget everything they learned and restart from their initial state.
type Burst struct {
	Round int
	Nodes []int
}

// Plan describes the faults to inject into one execution. The zero value is
// a fault-free plan. Scripted faults (Crashes, Recoveries, Corruptions) fire
// at exact rounds; rates draw independently each round from the plan's own
// seed-derived stream.
type Plan struct {
	// Seed derives the fault RNG streams. Independent of sim.Config.Seed so
	// the same fault pattern can be replayed against different executions
	// (and vice versa).
	Seed uint64

	// CrashRate is the per-round probability that each up node crashes;
	// RecoverRate the per-round probability that each down node recovers.
	CrashRate   float64
	RecoverRate float64

	// MaxDown caps the number of simultaneously-down nodes reachable via
	// CrashRate (scripted crashes are exempt). 0 means no cap.
	MaxDown int

	// ResetOnRecover models crash-with-amnesia: a recovering node's protocol
	// state is reset (via sim.Corruptible) as if freshly activated. False
	// models a transient disconnect that preserves state.
	ResetOnRecover bool

	// ProposalLoss is the per-proposal probability that a connection
	// proposal is dropped in transit. ConnLoss is the per-acceptance
	// probability that an accepted connection fails before the message
	// exchange. TagFlipRate is the per-(active node, round) probability that
	// one uniformly chosen bit of its advertisement is flipped on the air.
	ProposalLoss float64
	ConnLoss     float64
	TagFlipRate  float64

	// Scripted faults, applied at the start of their round before any rate
	// draws. A crash of an already-down node (or recovery of an up one) is a
	// no-op.
	Crashes    []NodeRound
	Recoveries []NodeRound

	// Corruptions are adversarial state-reset bursts. Only nodes active in
	// the burst round are corrupted.
	Corruptions []Burst
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	return p.CrashRate > 0 || p.RecoverRate > 0 ||
		p.ProposalLoss > 0 || p.ConnLoss > 0 || p.TagFlipRate > 0 ||
		len(p.Crashes) > 0 || len(p.Recoveries) > 0 || len(p.Corruptions) > 0
}

// Validate checks the plan against a network of n nodes.
func (p *Plan) Validate(n int) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashRate", p.CrashRate},
		{"RecoverRate", p.RecoverRate},
		{"ProposalLoss", p.ProposalLoss},
		{"ConnLoss", p.ConnLoss},
		{"TagFlipRate", p.TagFlipRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s = %v, want [0, 1]", r.name, r.v)
		}
	}
	if p.MaxDown < 0 || p.MaxDown > n {
		return fmt.Errorf("fault: MaxDown = %d, want [0, %d]", p.MaxDown, n)
	}
	check := func(what string, round, node int) error {
		if round < 1 {
			return fmt.Errorf("fault: %s round %d, rounds are 1-based", what, round)
		}
		if node < 0 || node >= n {
			return fmt.Errorf("fault: %s node %d out of range [0, %d)", what, node, n)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := check("scripted crash", c.Round, c.Node); err != nil {
			return err
		}
	}
	for _, c := range p.Recoveries {
		if err := check("scripted recovery", c.Round, c.Node); err != nil {
			return err
		}
	}
	for _, b := range p.Corruptions {
		if len(b.Nodes) == 0 {
			return fmt.Errorf("fault: corruption burst at round %d has no nodes", b.Round)
		}
		for _, u := range b.Nodes {
			if err := check("corruption", b.Round, u); err != nil {
				return err
			}
		}
	}
	return nil
}

// Injector is a Plan compiled for one n-node execution. The engine calls
// BeginRound once per round in its sequential prologue, then consults the
// query methods; all mutating methods are single-goroutine by contract.
type Injector struct {
	plan Plan
	n    int
	rng  xrand.RNG // per-round fault stream, reseeded in BeginRound

	down      []bool
	downCount int

	// Scripted faults indexed by round (single-key lookups only; iteration
	// order never matters).
	crashAt   map[int][]int32
	recoverAt map[int][]int32
	corruptAt map[int][]int32

	// Per-round scratch, valid until the next BeginRound.
	newlyDown      []int32
	newlyRecovered []int32
}

// NewInjector validates plan against an n-node network and compiles it.
func NewInjector(plan Plan, n int) (*Injector, error) {
	if n < 1 {
		return nil, fmt.Errorf("fault: n = %d, want >= 1", n)
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, n: n}
	if plan.CrashRate > 0 || plan.RecoverRate > 0 || len(plan.Crashes) > 0 {
		in.down = make([]bool, n)
		in.newlyDown = make([]int32, 0, 8)
		in.newlyRecovered = make([]int32, 0, 8)
	}
	in.crashAt = indexByRound(plan.Crashes)
	in.recoverAt = indexByRound(plan.Recoveries)
	if len(plan.Corruptions) > 0 {
		in.corruptAt = make(map[int][]int32, len(plan.Corruptions))
		for _, b := range plan.Corruptions {
			nodes := append(in.corruptAt[b.Round], toInt32Sorted(b.Nodes)...)
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			in.corruptAt[b.Round] = nodes
		}
	}
	return in, nil
}

func indexByRound(events []NodeRound) map[int][]int32 {
	if len(events) == 0 {
		return nil
	}
	idx := make(map[int][]int32, len(events))
	for _, e := range events {
		idx[e.Round] = append(idx[e.Round], int32(e.Node))
	}
	for r, nodes := range idx {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		idx[r] = nodes
	}
	return idx
}

func toInt32Sorted(nodes []int) []int32 {
	out := make([]int32, len(nodes))
	for i, u := range nodes {
		out[i] = int32(u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// N returns the network size the injector was compiled for.
func (in *Injector) N() int { return in.n }

// ResetOnRecover reports whether recovering nodes lose their state.
func (in *Injector) ResetOnRecover() bool { return in.plan.ResetOnRecover }

// RNG returns the current round's fault stream, for corruption draws.
func (in *Injector) RNG() *xrand.RNG { return &in.rng }

// BeginRound advances the churn state machine into round r: it reseeds the
// round's fault stream, applies scripted crashes and recoveries, then draws
// random churn in ascending node order. It must be called exactly once per
// round, in ascending round order, before any other query for that round.
func (in *Injector) BeginRound(r int) {
	in.rng.Reseed(in.plan.Seed, faultStream, uint64(r))
	in.newlyDown = in.newlyDown[:0]
	in.newlyRecovered = in.newlyRecovered[:0]
	if in.down == nil {
		return
	}
	for _, u := range in.crashAt[r] {
		in.setDown(u, true)
	}
	for _, u := range in.recoverAt[r] {
		in.setDown(u, false)
	}
	if in.plan.CrashRate == 0 && in.plan.RecoverRate == 0 {
		return
	}
	for u := 0; u < in.n; u++ {
		if in.down[u] {
			if in.plan.RecoverRate > 0 && in.rng.Float64() < in.plan.RecoverRate {
				in.setDown(int32(u), false)
			}
		} else if in.plan.CrashRate > 0 && in.rng.Float64() < in.plan.CrashRate {
			if in.plan.MaxDown > 0 && in.downCount >= in.plan.MaxDown {
				continue
			}
			in.setDown(int32(u), true)
		}
	}
}

func (in *Injector) setDown(u int32, d bool) {
	if in.down[u] == d {
		return
	}
	in.down[u] = d
	if d {
		in.downCount++
		in.newlyDown = append(in.newlyDown, u)
	} else {
		in.downCount--
		in.newlyRecovered = append(in.newlyRecovered, u)
	}
}

// DownMask returns the per-node down flags, or nil when every node is up —
// the engine skips the mask check entirely in the common case.
func (in *Injector) DownMask() []bool {
	if in.downCount == 0 {
		return nil
	}
	return in.down
}

// Down reports whether node u is currently down.
func (in *Injector) Down(u int) bool { return in.down != nil && in.down[u] }

// DownCount returns the number of currently-down nodes.
func (in *Injector) DownCount() int { return in.downCount }

// NewlyDown returns the nodes that crashed at this round's BeginRound, in
// the order the transitions fired (scripted first, then churn; ascending
// within each). Valid until the next BeginRound.
func (in *Injector) NewlyDown() []int32 { return in.newlyDown }

// NewlyRecovered returns the nodes that recovered at this round's
// BeginRound. Valid until the next BeginRound.
func (in *Injector) NewlyRecovered() []int32 { return in.newlyRecovered }

// CorruptTargets returns the nodes to corrupt at the start of round r, in
// ascending order (nil for rounds without a burst).
func (in *Injector) CorruptTargets(r int) []int32 {
	if in.corruptAt == nil {
		return nil
	}
	return in.corruptAt[r]
}

// FlipTag decides whether a node's advertisement is corrupted this round;
// it returns the (possibly flipped) tag. The engine calls it once per
// active node in ascending order after the advertise phase. A zero
// TagFlipRate consumes no draws.
func (in *Injector) FlipTag(tagBits int, tag uint64) (uint64, bool) {
	if in.plan.TagFlipRate == 0 || tagBits == 0 {
		return tag, false
	}
	if in.rng.Float64() >= in.plan.TagFlipRate {
		return tag, false
	}
	bit := in.rng.Intn(tagBits)
	return tag ^ (1 << uint(bit)), true
}

// DropProposal decides whether one in-flight proposal is lost. The engine
// calls it once per proposal in ascending proposer order. A zero
// ProposalLoss consumes no draws.
func (in *Injector) DropProposal() bool {
	return in.plan.ProposalLoss > 0 && in.rng.Float64() < in.plan.ProposalLoss
}

// DropConnection decides whether one accepted connection fails before the
// exchange. The engine calls it once per acceptance in ascending receiver
// order. A zero ConnLoss consumes no draws.
func (in *Injector) DropConnection() bool {
	return in.plan.ConnLoss > 0 && in.rng.Float64() < in.plan.ConnLoss
}
