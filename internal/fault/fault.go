// Package fault is the simulator's deterministic fault-injection layer: a
// seed-derived Plan of crashes, recoveries, message loss, advertisement
// corruption, network partitions, and adversarial state resets, compiled
// into an Injector the engine consults at fixed points of each round.
//
// Design constraints, in priority order:
//
//  1. Determinism, order-independently. Every per-node fault draw comes from
//     its own per-(node, round) stream, derived exactly like the engine's
//     node streams (rng.Reseed(seed, node, round)) but from Plan.Seed and a
//     per-fault-kind salt folded into the node address. A draw's outcome
//     therefore depends only on (plan seed, kind, node, round) — never on
//     how many draws other nodes consumed first — so the engine may evaluate
//     them in any order, from any worker, and a faulted execution stays a
//     pure function of (seed, schedule, protocol, config, plan) at any
//     worker count. Only the churn state machine (scripted crashes and
//     recoveries, rate churn under the MaxDown cap) is inherently
//     order-dependent; it runs once per round in BeginRound, on the
//     engine's sequential prologue, drawing from a per-round stream in
//     ascending node order. Rates of zero consume no draws and touch no
//     stream, so adding an unused knob never perturbs runs.
//  2. Composability. Faults stack on top of any schedule: a crashed node is
//     treated exactly like a node outside its activation window (invisible,
//     no callbacks), and recovers into whatever topology the schedule then
//     prescribes.
//  3. Zero cost when absent. A nil *Injector in sim.Config adds only
//     nil-checks to the round loop; the fault-free steady state stays at
//     0 allocs/round (TestSteadyStateZeroAllocs). Per-node draw methods
//     construct their stream in a stack-local RNG, so they are heap-free
//     and safe to call concurrently.
//
// The Injector is single-run state: build one per engine with NewInjector
// and do not share or reuse it across runs.
package fault

import (
	"fmt"
	"sort"

	"mobiletel/internal/xrand"
)

// StreamVersion identifies the fault stream derivation scheme. Version 2
// replaced version 1's single sequential per-round stream (draws consumed in
// a fixed documented order) with the node-addressed streams described in the
// package comment; any numeric result of a faulted run changed at that
// boundary (see DESIGN §10).
const StreamVersion = 2

// Per-stream salts. The churn stream is addressed (Plan.Seed, churnStream,
// round); per-node streams are addressed (Plan.Seed, kindSalt|node, round).
// The salts occupy high bits far above any node id (node ids are int32), so
// streams of different kinds — and the churn stream — can never collide, and
// none of them collides with the engine's per-(node, round) streams, which
// mix a different seed.
const (
	churnStream = 0xfa171 // BeginRound churn state machine (per-round)
	tagStream   = 0xfa17_2000_0000_0000
	propStream  = 0xfa17_3000_0000_0000
	connStream  = 0xfa17_4000_0000_0000
	resetStream = 0xfa17_5000_0000_0000
	partStream  = 0xfa17_6000_0000_0000
)

// NodeRound schedules a scripted fault for one node at the start of one
// round (rounds are 1-based, matching the engine).
type NodeRound struct {
	Round int
	Node  int
}

// Burst schedules an adversarial state reset of a set of nodes at the start
// of one round — the Section VIII self-stabilization adversary: corrupted
// nodes forget everything they learned and restart from their initial state.
type Burst struct {
	Round int
	Nodes []int
}

// Partition cuts the network into Parts seed-derived components for the
// rounds [Start, Heal): every edge whose endpoints fall in different
// components deterministically loses any connection accepted over it
// (modeled as ConnLoss on cut edges — proposals still cross the cut, so a
// receiver can waste its round accepting one, exactly like a connection
// that fails after acceptance). Heal == 0 means the cut never heals.
// Component assignment hashes (Plan.Seed, partition index, node), so the
// same plan splits the same nodes regardless of topology.
type Partition struct {
	Start int
	Heal  int
	Parts int
}

// Plan describes the faults to inject into one execution. The zero value is
// a fault-free plan. Scripted faults (Crashes, Recoveries, Corruptions,
// Partitions) fire at exact rounds; rates draw independently each round
// from the plan's own seed-derived streams.
type Plan struct {
	// Seed derives the fault RNG streams. Independent of sim.Config.Seed so
	// the same fault pattern can be replayed against different executions
	// (and vice versa).
	Seed uint64

	// CrashRate is the per-round probability that each up node crashes;
	// RecoverRate the per-round probability that each down node recovers.
	CrashRate   float64
	RecoverRate float64

	// MaxDown caps the number of simultaneously-down nodes reachable via
	// CrashRate (scripted crashes are exempt). 0 means no cap.
	MaxDown int

	// ResetOnRecover models crash-with-amnesia: a recovering node's protocol
	// state is reset (via sim.Corruptible) as if freshly activated. False
	// models a transient disconnect that preserves state.
	ResetOnRecover bool

	// ProposalLoss is the per-proposal probability that a connection
	// proposal is dropped in transit. ConnLoss is the per-acceptance
	// probability that an accepted connection fails before the message
	// exchange. TagFlipRate is the per-(active node, round) probability that
	// one uniformly chosen bit of its advertisement is flipped on the air.
	ProposalLoss float64
	ConnLoss     float64
	TagFlipRate  float64

	// Scripted faults, applied at the start of their round before any rate
	// draws. A crash of an already-down node (or recovery of an up one) is a
	// no-op. Validate rejects duplicate (round, node) crash entries and
	// recoveries of nodes with no strictly earlier scripted crash.
	Crashes    []NodeRound
	Recoveries []NodeRound

	// Corruptions are adversarial state-reset bursts. Only nodes active in
	// the burst round are corrupted.
	Corruptions []Burst

	// Partitions are scheduled network splits with heal rounds.
	Partitions []Partition
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	return p.CrashRate > 0 || p.RecoverRate > 0 ||
		p.ProposalLoss > 0 || p.ConnLoss > 0 || p.TagFlipRate > 0 ||
		len(p.Crashes) > 0 || len(p.Recoveries) > 0 || len(p.Corruptions) > 0 ||
		len(p.Partitions) > 0
}

// Validate checks the plan against a network of n nodes.
func (p *Plan) Validate(n int) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashRate", p.CrashRate},
		{"RecoverRate", p.RecoverRate},
		{"ProposalLoss", p.ProposalLoss},
		{"ConnLoss", p.ConnLoss},
		{"TagFlipRate", p.TagFlipRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s = %v, want [0, 1]", r.name, r.v)
		}
	}
	if p.MaxDown < 0 || p.MaxDown > n {
		return fmt.Errorf("fault: MaxDown = %d, want [0, %d]", p.MaxDown, n)
	}
	check := func(what string, round, node int) error {
		if round < 1 {
			return fmt.Errorf("fault: %s round %d, rounds are 1-based", what, round)
		}
		if node < 0 || node >= n {
			return fmt.Errorf("fault: %s node %d out of range [0, %d)", what, node, n)
		}
		return nil
	}
	seenCrash := make(map[NodeRound]bool, len(p.Crashes))
	firstCrash := make(map[int]int, len(p.Crashes)) // node -> earliest crash round
	for _, c := range p.Crashes {
		if err := check("scripted crash", c.Round, c.Node); err != nil {
			return err
		}
		if seenCrash[c] {
			return fmt.Errorf("fault: duplicate scripted crash of node %d at round %d", c.Node, c.Round)
		}
		seenCrash[c] = true
		if first, ok := firstCrash[c.Node]; !ok || c.Round < first {
			firstCrash[c.Node] = c.Round
		}
	}
	for _, c := range p.Recoveries {
		if err := check("scripted recovery", c.Round, c.Node); err != nil {
			return err
		}
		if first, ok := firstCrash[c.Node]; !ok || first >= c.Round {
			return fmt.Errorf("fault: scripted recovery of node %d at round %d without a scripted crash in an earlier round", c.Node, c.Round)
		}
	}
	for _, b := range p.Corruptions {
		if len(b.Nodes) == 0 {
			return fmt.Errorf("fault: corruption burst at round %d has no nodes", b.Round)
		}
		for _, u := range b.Nodes {
			if err := check("corruption", b.Round, u); err != nil {
				return err
			}
		}
	}
	for i, part := range p.Partitions {
		if part.Start < 1 {
			return fmt.Errorf("fault: partition %d starts at round %d, rounds are 1-based", i, part.Start)
		}
		if part.Heal != 0 && part.Heal <= part.Start {
			return fmt.Errorf("fault: partition %d heals at round %d, want 0 (never) or > Start (%d)", i, part.Heal, part.Start)
		}
		if part.Parts < 2 || part.Parts > n {
			return fmt.Errorf("fault: partition %d splits into %d parts, want [2, %d]", i, part.Parts, n)
		}
	}
	return nil
}

// Injector is a Plan compiled for one n-node execution. The engine calls
// BeginRound once per round in its sequential prologue; the churn accessors
// (DownMask, NewlyDown, ...) and StateRNG are likewise sequential-only. The
// per-node draw methods (FlipTag, DropProposal, DropConnection) touch no
// injector state and may be called concurrently from any worker, in any
// order.
type Injector struct {
	plan Plan
	n    int

	// rng is sequential scratch: the churn stream in BeginRound, then
	// whatever per-(node, round) stream StateRNG last addressed.
	rng xrand.RNG

	down      []bool
	downCount int

	// Scripted faults indexed by round (single-key lookups only; iteration
	// order never matters — and CorruptTargets pins that the per-round node
	// lists are sorted ascending regardless of plan declaration order).
	crashAt   map[int][]int32
	recoverAt map[int][]int32
	corruptAt map[int][]int32

	// partComp[i][u] is node u's seed-derived component under partition i.
	partComp [][]int32

	// Per-round scratch, valid until the next BeginRound.
	newlyDown      []int32
	newlyRecovered []int32
}

// NewInjector validates plan against an n-node network and compiles it.
func NewInjector(plan Plan, n int) (*Injector, error) {
	if n < 1 {
		return nil, fmt.Errorf("fault: n = %d, want >= 1", n)
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, n: n}
	if plan.CrashRate > 0 || plan.RecoverRate > 0 || len(plan.Crashes) > 0 {
		in.down = make([]bool, n)
		in.newlyDown = make([]int32, 0, 8)
		in.newlyRecovered = make([]int32, 0, 8)
	}
	in.crashAt = indexByRound(plan.Crashes)
	in.recoverAt = indexByRound(plan.Recoveries)
	if len(plan.Corruptions) > 0 {
		in.corruptAt = make(map[int][]int32, len(plan.Corruptions))
		for _, b := range plan.Corruptions {
			nodes := append(in.corruptAt[b.Round], toInt32Sorted(b.Nodes)...)
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			in.corruptAt[b.Round] = nodes
		}
	}
	if len(plan.Partitions) > 0 {
		in.partComp = make([][]int32, len(plan.Partitions))
		var rng xrand.RNG
		for i, part := range plan.Partitions {
			comp := make([]int32, n)
			for u := 0; u < n; u++ {
				rng.Reseed(plan.Seed, partStream|uint64(uint32(i)), uint64(u))
				comp[u] = int32(rng.Intn(part.Parts))
			}
			in.partComp[i] = comp
		}
	}
	return in, nil
}

func indexByRound(events []NodeRound) map[int][]int32 {
	if len(events) == 0 {
		return nil
	}
	idx := make(map[int][]int32, len(events))
	for _, e := range events {
		idx[e.Round] = append(idx[e.Round], int32(e.Node))
	}
	for r, nodes := range idx {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		idx[r] = nodes
	}
	return idx
}

func toInt32Sorted(nodes []int) []int32 {
	out := make([]int32, len(nodes))
	for i, u := range nodes {
		out[i] = int32(u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// N returns the network size the injector was compiled for.
func (in *Injector) N() int { return in.n }

// ResetOnRecover reports whether recovering nodes lose their state.
func (in *Injector) ResetOnRecover() bool { return in.plan.ResetOnRecover }

// TagFlipEnabled reports whether any tag-flip draw can fire, so the engine
// can skip the flip pass entirely for plans that never flip.
func (in *Injector) TagFlipEnabled() bool { return in.plan.TagFlipRate > 0 }

// StateRNG returns the per-(node, round) stream for node u's adversarial
// state reset (crash-with-amnesia recovery or corruption burst) at round r.
// The returned pointer is the injector's sequential scratch generator:
// engine sequential sections only, valid until the next StateRNG or
// BeginRound call.
func (in *Injector) StateRNG(u int32, r int) *xrand.RNG {
	in.rng.Reseed(in.plan.Seed, resetStream|uint64(uint32(u)), uint64(r))
	return &in.rng
}

// BeginRound advances the churn state machine into round r: it reseeds the
// round's churn stream, applies scripted crashes and recoveries, then draws
// random churn in ascending node order. It must be called exactly once per
// round, in ascending round order, before any other query for that round.
func (in *Injector) BeginRound(r int) {
	in.rng.Reseed(in.plan.Seed, churnStream, uint64(r))
	in.newlyDown = in.newlyDown[:0]
	in.newlyRecovered = in.newlyRecovered[:0]
	if in.down == nil {
		return
	}
	for _, u := range in.crashAt[r] {
		in.setDown(u, true)
	}
	for _, u := range in.recoverAt[r] {
		in.setDown(u, false)
	}
	if in.plan.CrashRate == 0 && in.plan.RecoverRate == 0 {
		return
	}
	for u := 0; u < in.n; u++ {
		if in.down[u] {
			if in.plan.RecoverRate > 0 && in.rng.Float64() < in.plan.RecoverRate {
				in.setDown(int32(u), false)
			}
		} else if in.plan.CrashRate > 0 && in.rng.Float64() < in.plan.CrashRate {
			if in.plan.MaxDown > 0 && in.downCount >= in.plan.MaxDown {
				continue
			}
			in.setDown(int32(u), true)
		}
	}
}

func (in *Injector) setDown(u int32, d bool) {
	if in.down[u] == d {
		return
	}
	in.down[u] = d
	if d {
		in.downCount++
		in.newlyDown = append(in.newlyDown, u)
	} else {
		in.downCount--
		in.newlyRecovered = append(in.newlyRecovered, u)
	}
}

// DownMask returns the per-node down flags, or nil when every node is up —
// the engine skips the mask check entirely in the common case.
func (in *Injector) DownMask() []bool {
	if in.downCount == 0 {
		return nil
	}
	return in.down
}

// Down reports whether node u is currently down.
func (in *Injector) Down(u int) bool { return in.down != nil && in.down[u] }

// DownCount returns the number of currently-down nodes.
func (in *Injector) DownCount() int { return in.downCount }

// NewlyDown returns the nodes that crashed at this round's BeginRound, in
// the order the transitions fired (scripted first, then churn; ascending
// within each). Valid until the next BeginRound.
func (in *Injector) NewlyDown() []int32 { return in.newlyDown }

// NewlyRecovered returns the nodes that recovered at this round's
// BeginRound. Valid until the next BeginRound.
func (in *Injector) NewlyRecovered() []int32 { return in.newlyRecovered }

// CorruptTargets returns the nodes to corrupt at the start of round r, in
// ascending order (nil for rounds without a burst).
func (in *Injector) CorruptTargets(r int) []int32 {
	if in.corruptAt == nil {
		return nil
	}
	return in.corruptAt[r]
}

// FlipTag decides whether node u's advertisement is corrupted at round r; it
// returns the (possibly flipped) tag. Node-addressed: safe from any worker,
// in any order. A zero TagFlipRate touches no stream.
//
//mtmlint:hotpath
func (in *Injector) FlipTag(u int32, r, tagBits int, tag uint64) (uint64, bool) {
	if in.plan.TagFlipRate == 0 || tagBits == 0 {
		return tag, false
	}
	var rng xrand.RNG
	rng.Reseed(in.plan.Seed, tagStream|uint64(uint32(u)), uint64(r))
	if rng.Float64() >= in.plan.TagFlipRate {
		return tag, false
	}
	bit := rng.Intn(tagBits)
	return tag ^ (1 << uint(bit)), true
}

// DropProposal decides whether proposer u's in-flight proposal is lost at
// round r. Node-addressed: safe from any worker, in any order. A zero
// ProposalLoss touches no stream.
//
//mtmlint:hotpath
func (in *Injector) DropProposal(u int32, r int) bool {
	if in.plan.ProposalLoss == 0 {
		return false
	}
	var rng xrand.RNG
	rng.Reseed(in.plan.Seed, propStream|uint64(uint32(u)), uint64(r))
	return rng.Float64() < in.plan.ProposalLoss
}

// DropConnection decides whether the connection receiver v accepted from
// sender c fails before the exchange at round r: deterministically when a
// live partition cuts the (v, c) edge, otherwise by a per-(receiver, round)
// ConnLoss draw. Node-addressed: safe from any worker, in any order. With
// no partitions and a zero ConnLoss it touches no stream.
//
//mtmlint:hotpath
func (in *Injector) DropConnection(v, c int32, r int) bool {
	for i := range in.partComp {
		p := &in.plan.Partitions[i]
		if r >= p.Start && (p.Heal == 0 || r < p.Heal) && in.partComp[i][v] != in.partComp[i][c] {
			return true
		}
	}
	if in.plan.ConnLoss == 0 {
		return false
	}
	var rng xrand.RNG
	rng.Reseed(in.plan.Seed, connStream|uint64(uint32(v)), uint64(r))
	return rng.Float64() < in.plan.ConnLoss
}

// CutEdge reports whether a live partition separates u and v at round r
// (for observers and experiments; DropConnection already folds this in).
func (in *Injector) CutEdge(u, v int32, r int) bool {
	for i := range in.partComp {
		p := &in.plan.Partitions[i]
		if r >= p.Start && (p.Heal == 0 || r < p.Heal) && in.partComp[i][u] != in.partComp[i][v] {
			return true
		}
	}
	return false
}
