// Package prof wires the standard runtime/pprof profilers into the CLI
// tools (mtmexp -cpuprofile/-memprofile, mtmsim -cpuprofile). It exists so
// each command gets identical file handling and error reporting without
// duplicating the open/start/stop/close dance.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns a stop function
// that ends profiling and closes the file. The caller must invoke stop on
// every exit path (normal or error) or the profile is truncated.
func StartCPU(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("cpu profile: %w (and closing: %v)", err, cerr)
		}
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeap writes a heap profile to path, forcing a GC first so the
// profile reflects live objects rather than garbage awaiting collection.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("heap profile: %w (and closing: %v)", err, cerr)
		}
		return fmt.Errorf("heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
