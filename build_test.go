package mobiletel

import (
	"strings"
	"testing"
)

func TestBuildTopologyAllNames(t *testing.T) {
	names := []string{"clique", "path", "cycle", "star", "lineofstars",
		"ringofcliques", "regular", "er", "grid", "hypercube", "barbell", "scalefree"}
	for _, name := range names {
		topo, err := BuildTopology(name, 64, 4, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if topo.N() < 2 {
			t.Errorf("%s: implausible size %d", name, topo.N())
		}
	}
}

func TestBuildTopologyUnknown(t *testing.T) {
	if _, err := BuildTopology("bogus", 10, 2, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildTopologyCaseInsensitive(t *testing.T) {
	if _, err := BuildTopology("CLIQUE", 8, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBuildScheduleAllNames(t *testing.T) {
	topo, err := BuildTopology("regular", 32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"static", "permuted", "churn", "waypoint"} {
		sched, err := BuildSchedule(name, topo, 3, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if name != "static" && sched.Tau() != 3 {
			t.Errorf("%s: tau=%d", name, sched.Tau())
		}
	}
	if _, err := BuildSchedule("bogus", topo, 1, 1); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestIntSqrt(t *testing.T) {
	cases := map[int]int{1: 1, 3: 1, 4: 2, 8: 2, 9: 3, 100: 10, 120: 10}
	for in, want := range cases {
		if got := intSqrt(in); got != want {
			t.Errorf("intSqrt(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRingOfCliquesMinimumSize(t *testing.T) {
	if _, err := BuildTopology("ringofcliques", 10, 2, 1); err == nil ||
		!strings.Contains(err.Error(), "24") {
		t.Fatalf("small ringofcliques not rejected properly: %v", err)
	}
}
