package mobiletel_test

// Tests for the facade's extension primitives — consensus (Decide) and data
// aggregation (Aggregate) — which implement the "gossip, consensus, and
// data aggregation" follow-on problems from the paper's conclusion.

import (
	"math"
	"strings"
	"testing"

	"mobiletel"
)

func TestDecideAgreementAndValidity(t *testing.T) {
	topo := mobiletel.RandomRegular(48, 6, 15)
	proposals := make([]uint64, 48)
	for i := range proposals {
		proposals[i] = uint64(i * 11)
	}
	res, err := mobiletel.Decide(mobiletel.Static(topo), proposals, mobiletel.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range proposals {
		if p == res.Value {
			found = true
		}
	}
	if !found {
		t.Fatalf("decided %d is nobody's proposal", res.Value)
	}
	if res.Rounds < 1 || res.Leader == 0 {
		t.Fatalf("implausible result %+v", res)
	}
}

func TestDecideUnderMobilityDeterministic(t *testing.T) {
	topo := mobiletel.RandomRegular(32, 4, 8)
	proposals := make([]uint64, 32)
	for i := range proposals {
		proposals[i] = uint64(1000 + i)
	}
	run := func() mobiletel.DecisionResult {
		res, err := mobiletel.Decide(mobiletel.Permuted(topo, 2, 4), proposals, mobiletel.Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic consensus: %+v vs %+v", a, b)
	}
}

func TestDecideValidatesLength(t *testing.T) {
	topo := mobiletel.Cycle(6)
	if _, err := mobiletel.Decide(mobiletel.Static(topo), []uint64{1}, mobiletel.Options{}); err == nil {
		t.Fatal("short proposals accepted")
	}
}

func TestAggregateMinMaxExact(t *testing.T) {
	topo := mobiletel.RandomRegular(40, 6, 21)
	inputs := make([]float64, 40)
	for i := range inputs {
		inputs[i] = float64((i*7)%40) - 10
	}
	resMin, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Min, inputs, 0, mobiletel.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resMax, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Max, inputs, 0, mobiletel.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if resMin.Estimates[i] != -10 {
			t.Fatalf("node %d min %v, want -10", i, resMin.Estimates[i])
		}
		if resMax.Estimates[i] != 29 {
			t.Fatalf("node %d max %v, want 29", i, resMax.Estimates[i])
		}
	}
}

func TestAggregateMeanWithinTolerance(t *testing.T) {
	topo := mobiletel.RandomRegular(64, 6, 33)
	inputs := make([]float64, 64)
	truth := 0.0
	for i := range inputs {
		inputs[i] = float64(i)
		truth += inputs[i]
	}
	truth /= 64
	res, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Mean, inputs, 0.01, mobiletel.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range res.Estimates {
		if math.Abs(est-truth)/truth > 0.011 {
			t.Fatalf("node %d mean estimate %v, want ~%v", i, est, truth)
		}
	}
}

func TestAggregateCountNilInputs(t *testing.T) {
	topo := mobiletel.RandomRegular(80, 6, 44)
	res, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Count, nil, 0.05, mobiletel.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range res.Estimates {
		if math.Abs(est-80)/80 > 0.05 {
			t.Fatalf("node %d count estimate %v, want ~80", i, est)
		}
	}
}

func TestAggregateSum(t *testing.T) {
	topo := mobiletel.RandomRegular(32, 4, 55)
	inputs := make([]float64, 32)
	truth := 0.0
	for i := range inputs {
		inputs[i] = 2.5
		truth += 2.5
	}
	res, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Sum, inputs, 0.02, mobiletel.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range res.Estimates {
		if math.Abs(est-truth)/truth > 0.02 {
			t.Fatalf("node %d sum estimate %v, want ~%v", i, est, truth)
		}
	}
}

func TestAggregateValidatesInputs(t *testing.T) {
	topo := mobiletel.Cycle(6)
	if _, err := mobiletel.Aggregate(mobiletel.Static(topo), mobiletel.Mean, []float64{1}, 0.1, mobiletel.Options{}); err == nil {
		t.Fatal("short inputs accepted")
	}
}

func TestAggregateKindString(t *testing.T) {
	kinds := map[mobiletel.AggregateKind]string{
		mobiletel.Min: "min", mobiletel.Max: "max", mobiletel.Mean: "mean",
		mobiletel.Count: "count", mobiletel.Sum: "sum",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", k, k.String())
		}
	}
}

func TestGossipAllCompletes(t *testing.T) {
	topo := mobiletel.RandomRegular(32, 4, 66)
	res, err := mobiletel.GossipAll(mobiletel.Static(topo), mobiletel.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all requires at least n-1 connections per node's rumor to
	// reach everyone; the total must comfortably exceed n.
	if res.Rounds < 1 || res.Connections < int64(topo.N()) {
		t.Fatalf("implausible gossip result %+v", res)
	}
}

func TestGossipAllDeterministic(t *testing.T) {
	topo := mobiletel.Cycle(16)
	run := func() mobiletel.GossipResult {
		res, err := mobiletel.GossipAll(mobiletel.Permuted(topo, 2, 3), mobiletel.Options{Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic gossip: %+v vs %+v", a, b)
	}
}

func TestRunSweepAggregates(t *testing.T) {
	topo := mobiletel.RandomRegular(32, 4, 5)
	rows, err := mobiletel.RunSweep([]string{"blindgossip", "bitconv"}, 4, 1,
		func(label string, seed uint64) (int, error) {
			algo := mobiletel.BlindGossip
			if label == "bitconv" {
				algo = mobiletel.BitConv
			}
			res, err := mobiletel.ElectLeader(mobiletel.Static(topo), algo, mobiletel.Options{Seed: seed})
			return res.Rounds, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Trials != 4 {
		t.Fatalf("rows %+v", rows)
	}
	for _, r := range rows {
		if r.Min > r.Median || r.Median > r.Max || r.Mean <= 0 {
			t.Fatalf("inconsistent row %+v", r)
		}
	}
	text := mobiletel.FormatSweep("demo", rows)
	if !strings.Contains(text, "blindgossip") || !strings.Contains(text, "median") {
		t.Fatalf("table missing content:\n%s", text)
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	topo := mobiletel.Cycle(16)
	run := func() []mobiletel.SweepRow {
		rows, err := mobiletel.RunSweep([]string{"a"}, 6, 3, func(_ string, seed uint64) (int, error) {
			res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
				mobiletel.Options{Seed: seed})
			return res.Rounds, err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Fatalf("sweep nondeterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestRunSweepErrorPropagates(t *testing.T) {
	_, err := mobiletel.RunSweep([]string{"x"}, 2, 1, func(string, uint64) (int, error) {
		return 0, mobiletel.ErrNotStabilized
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := mobiletel.RunSweep(nil, 0, 1, nil); err == nil {
		t.Fatal("trials=0 accepted")
	}
}
