// Census: infrastructure-free coordination primitives beyond leader
// election — the "gossip, consensus, and data aggregation" problems the
// paper's conclusion proposes for the mobile telephone model.
//
// A crowd of phones with no connectivity wants to (1) estimate how many
// people are present, (2) compute the average of a locally-measured value
// (say, battery level, to decide who should relay), and (3) vote on a
// meeting point by consensus.
//
// Run with:
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"mobiletel"
)

func main() {
	const phones = 150
	mesh := mobiletel.Waypoint(phones, 0.3, 0.04, 4, 2026)

	// 1. Crowd size estimate (nobody knows n in advance).
	count, err := mobiletel.Aggregate(mesh, mobiletel.Count, nil, 0.02, mobiletel.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd size:    device 7 estimates %.1f phones (truth %d) after %d rounds\n",
		count.Estimates[7], phones, count.Rounds)

	// 2. Average battery level, to pick relays fairly.
	battery := make([]float64, phones)
	truth := 0.0
	for i := range battery {
		battery[i] = 20 + float64((i*37)%80) // 20%..99%
		truth += battery[i]
	}
	truth /= phones
	mean, err := mobiletel.Aggregate(mesh, mobiletel.Mean, battery, 0.01, mobiletel.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean battery:  device 0 estimates %.1f%% (truth %.1f%%) after %d rounds\n",
		mean.Estimates[0], truth, mean.Rounds)

	// 3. Vote on a meeting point: everyone proposes a location id; the
	// network agrees on the elected leader's proposal (validity: it is some
	// participant's genuine proposal).
	proposals := make([]uint64, phones)
	for i := range proposals {
		proposals[i] = uint64(1 + i%5) // five candidate meeting points
	}
	decision, err := mobiletel.Decide(mesh, proposals, mobiletel.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting point: agreed on location %d (leader %#x) after %d rounds\n",
		decision.Value, decision.Leader, decision.Rounds)

	fmt.Println("\nAll three primitives run on the same peer-to-peer substrate:")
	fmt.Println("one connection per phone per round, no infrastructure, full churn tolerance.")
}
