// Protest: a censorship-resistant mesh-chat scenario (the paper's
// introduction cites the Hong Kong protest use of phone-to-phone chat).
//
// A dense crowd of phones forms an ad-hoc mesh with no infrastructure. The
// crowd moves constantly — the topology is adversarially re-shuffled every
// round (τ = 1, the harshest mobility the model allows) — and the phones
// must still agree on a coordinator to sequence messages. We compare blind
// gossip (works on any phone: zero advertisement bits) against bit
// convergence (needs one bit in the service advertisement string).
//
// Run with:
//
//	go run ./examples/protest
package main

import (
	"fmt"
	"log"

	"mobiletel"
)

func main() {
	const crowd = 200

	// Each phone can hold direct connections to ~10 nearby phones; the crowd
	// reshuffles who is near whom every single round.
	topo := mobiletel.RandomRegular(crowd, 10, 99)
	mobility := mobiletel.Permuted(topo, 1, 12345) // τ = 1: maximal churn

	fmt.Printf("crowd of %d phones, %d neighbors each, topology reshuffled every round\n\n",
		crowd, topo.MaxDegree())

	for _, algo := range []mobiletel.Algorithm{mobiletel.BlindGossip, mobiletel.BitConv} {
		res, err := mobiletel.ElectLeader(mobility, algo, mobiletel.Options{Seed: 3})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		// At ~4 peer-to-peer rounds per second (typical scan+connect latency
		// for Multipeer Connectivity), convert rounds to wall-clock time.
		seconds := float64(res.Rounds) / 4
		fmt.Printf("%-13s coordinator agreed after %6d rounds (≈ %.0fs of real time)\n",
			algo.String()+":", res.Rounds, seconds)
	}

	fmt.Println("\nEven under maximal mobility (τ=1) both algorithms stabilize — the")
	fmt.Println("paper's guarantees require no knowledge of τ at all. At this crowd")
	fmt.Println("density (Δ=10) blind gossip's Δ² contention cost is mild and its")
	fmt.Println("light constants win; the advertisement bit becomes decisive on")
	fmt.Println("high-degree bottleneck topologies (see examples/quickstart and the")
	fmt.Println("E7 experiment). Notably, random crowd motion *helps* the zero-bit")
	fmt.Println("algorithm: mixing carries small UIDs past static bottlenecks.")
}
