// Quickstart: elect a leader among simulated smartphones using each of the
// paper's three algorithms, on a friendly topology and on the paper's
// adversarial one.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobiletel"
)

func main() {
	// Scenario 1: a well-connected mesh (256 devices, 8 neighbors each).
	// Here every algorithm is fast — with small Δ, even blind gossip's Δ²
	// connection cost is negligible, and its constants are the lightest.
	mesh := mobiletel.RandomRegular(256, 8, 42)
	fmt.Printf("well-connected mesh: n=%d Δ=%d α≈%.3g\n", mesh.N(), mesh.MaxDegree(), mesh.Alpha())
	runAll(mesh)

	// Scenario 2: the paper's adversarial topology — a line of √n stars of
	// √n points (Section VI). Blind gossip provably needs Ω(Δ²√n) rounds
	// here; bit convergence, with one advertisement bit, avoids the Δ²
	// contention and pulls ahead (the gap widens as Δ grows).
	stars := mobiletel.SqrtLineOfStars(25) // n = 650, Δ = 27
	fmt.Printf("\nline of stars:       n=%d Δ=%d α≈%.3g\n", stars.N(), stars.MaxDegree(), stars.Alpha())
	runAll(stars)

	fmt.Println("\nTakeaways: all three algorithms always stabilize to one leader.")
	fmt.Println("BlindGossip needs zero advertisement bits but pays Δ² per hop on bad")
	fmt.Println("topologies; BitConv's single bit removes that cost; AsyncBitConv")
	fmt.Println("additionally tolerates devices that start at different times (see")
	fmt.Println("examples/festival) at the price of extra polylog factors.")
}

// runAll elects a leader with each algorithm and prints the round counts.
func runAll(topo mobiletel.Topology) {
	for _, algo := range []mobiletel.Algorithm{
		mobiletel.BlindGossip,  // b = 0
		mobiletel.BitConv,      // b = 1
		mobiletel.AsyncBitConv, // b = loglog n + O(1), async activations
	} {
		res, err := mobiletel.ElectLeader(mobiletel.Static(topo), algo, mobiletel.Options{Seed: 7})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		fmt.Printf("  %-14s leader %#016x in %6d rounds (%d connections)\n",
			algo.String()+":", res.Leader, res.Rounds, res.Connections)
	}
}
