// Rumor: disaster-zone alert dissemination (the paper's third motivating
// scenario — networking where infrastructure is down).
//
// One phone learns an evacuation alert and must spread it to the whole
// mesh. We compare the b = 0 PUSH-PULL strategy (Corollary VI.6 bounds it
// at O((1/α)Δ²log²n) rounds) with the b = 1 PPUSH strategy, on a friendly
// expander and on the paper's adversarial line-of-stars topology where the
// Δ² cost of blind connections really bites.
//
// Run with:
//
//	go run ./examples/rumor
package main

import (
	"fmt"
	"log"

	"mobiletel"
)

func main() {
	scenarios := []struct {
		label string
		topo  mobiletel.Topology
	}{
		{"expander mesh (well-connected)", mobiletel.RandomRegular(210, 8, 4)},
		{"line of stars (adversarial)", mobiletel.SqrtLineOfStars(14)}, // n = 210
	}

	for _, sc := range scenarios {
		fmt.Printf("%s: n=%d Δ=%d α≈%.3g\n", sc.label, sc.topo.N(), sc.topo.MaxDegree(), sc.topo.Alpha())
		for _, strat := range []mobiletel.RumorStrategy{mobiletel.PushPull, mobiletel.PPush} {
			res, err := mobiletel.SpreadRumor(mobiletel.Static(sc.topo), strat, []int{0},
				mobiletel.Options{Seed: 17})
			if err != nil {
				log.Fatalf("%v on %s: %v", strat, sc.label, err)
			}
			fmt.Printf("  %-9s alert reached all devices in %6d rounds\n", strat.String()+":", res.Rounds)
		}
		fmt.Println()
	}

	fmt.Println("On the expander both strategies are quick; on the line of stars the")
	fmt.Println("one advertisement bit avoids wasted connection attempts and wins big —")
	fmt.Println("the gap Section VI proves is inherent to b = 0.")
}
