// Festival: coordination at an event where cellular coverage is overwhelmed
// (another of the paper's motivating scenarios).
//
// Phones wander the festival grounds under random-waypoint mobility, and —
// crucially — people arrive at different times, so devices activate over a
// long window. Only the non-synchronized bit convergence algorithm
// (Section VIII) handles asynchronous activations with sub-gossip time; it
// needs b = loglog n + O(1) advertisement bits. We also demonstrate its
// self-stabilization: two separated groups (main stage vs camp ground) each
// elect their own coordinator, then merge when the crowds mix, and the
// merged network converges to a single coordinator again.
//
// Run with:
//
//	go run ./examples/festival
package main

import (
	"fmt"
	"log"

	"mobiletel"
)

func main() {
	const phones = 120

	// Phase 1: staggered arrivals under mobility.
	arrivals := make([]int, phones)
	for i := range arrivals {
		arrivals[i] = 1 + (i*37)%400 // arrivals spread over 400 rounds
	}
	mobility := mobiletel.Waypoint(phones, 0.3, 0.03, 4, 777)

	res, err := mobiletel.ElectLeader(mobility, mobiletel.AsyncBitConv, mobiletel.Options{
		Seed:        11,
		Activations: arrivals,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staggered arrivals over 400 rounds, random-waypoint mobility:\n")
	fmt.Printf("  coordinator %#x agreed by round %d (%d rounds after the last arrival)\n\n",
		res.Leader, res.Rounds, res.Rounds-400)

	// Phase 2: two genuinely disconnected crowds (main stage and camp
	// ground) each elect their own coordinator; at round 1500 the crowds mix
	// into one mesh and must re-converge to a single coordinator.
	stage := mobiletel.RandomRegular(phones, 6, 5)
	separated := mobiletel.Separated(
		mobiletel.RandomRegular(phones/2, 6, 31),
		mobiletel.RandomRegular(phones/2, 6, 32),
	)
	// Note: the pre-merge schedule must be Static — Permuted mobility would
	// relocate people between the two crowds and connect them early.
	merged := mobiletel.Merge(
		mobiletel.Static(separated),
		mobiletel.Static(stage),
		1500,
	)
	res2, err := mobiletel.ElectLeader(merged, mobiletel.AsyncBitConv, mobiletel.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two separated crowds merged at round 1500:\n")
	fmt.Printf("  single coordinator %#x re-established by round %d (%d rounds after the merge)\n",
		res2.Leader, res2.Rounds, res2.Rounds-1500)
	fmt.Println("\nSelf-stabilization: pre-merge history does not slow re-convergence.")
}
