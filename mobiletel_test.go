package mobiletel_test

import (
	"errors"
	"strings"
	"testing"

	"mobiletel"
)

func TestElectLeaderBlindGossip(t *testing.T) {
	topo := mobiletel.RandomRegular(64, 6, 42)
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || res.Leader == 0 || res.Connections < 1 {
		t.Fatalf("implausible result: %+v", res)
	}
	// The leader must be the minimum of the UID assignment used.
	min := res.UIDs[0]
	for _, u := range res.UIDs {
		if u < min {
			min = u
		}
	}
	if res.Leader != min {
		t.Fatalf("leader %d, want min UID %d", res.Leader, min)
	}
}

func TestElectLeaderAllAlgorithms(t *testing.T) {
	topo := mobiletel.RandomRegular(48, 6, 7)
	for _, algo := range []mobiletel.Algorithm{mobiletel.BlindGossip, mobiletel.BitConv, mobiletel.AsyncBitConv} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res, err := mobiletel.ElectLeader(mobiletel.Static(topo), algo, mobiletel.Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds < 1 {
				t.Fatalf("no rounds: %+v", res)
			}
		})
	}
}

func TestElectLeaderDeterministic(t *testing.T) {
	topo := mobiletel.Clique(32)
	run := func() mobiletel.ElectionResult {
		res, err := mobiletel.ElectLeader(mobiletel.Permuted(topo, 2, 5), mobiletel.BitConv,
			mobiletel.Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Leader != b.Leader || a.Rounds != b.Rounds || a.Connections != b.Connections {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestElectLeaderCustomUIDs(t *testing.T) {
	topo := mobiletel.Cycle(10)
	uids := make([]uint64, 10)
	for i := range uids {
		uids[i] = uint64(100 - i)
	}
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{Seed: 2, UIDs: uids})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 91 {
		t.Fatalf("leader %d, want 91", res.Leader)
	}
}

func TestElectLeaderUIDLengthMismatch(t *testing.T) {
	topo := mobiletel.Cycle(10)
	_, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{UIDs: []uint64{1, 2}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestElectLeaderTimeout(t *testing.T) {
	topo := mobiletel.SqrtLineOfStars(8)
	_, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{Seed: 1, MaxRounds: 3})
	if !errors.Is(err, mobiletel.ErrNotStabilized) {
		t.Fatalf("want ErrNotStabilized, got %v", err)
	}
}

func TestSpreadRumorBothStrategies(t *testing.T) {
	topo := mobiletel.RandomRegular(64, 6, 11)
	for _, strat := range []mobiletel.RumorStrategy{mobiletel.PushPull, mobiletel.PPush} {
		res, err := mobiletel.SpreadRumor(mobiletel.Static(topo), strat, []int{0}, mobiletel.Options{Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Rounds < 1 || res.Connections < int64(topo.N()-1) {
			t.Fatalf("%v: implausible %+v (need >= n-1 connections)", strat, res)
		}
	}
}

func TestSpreadRumorValidation(t *testing.T) {
	topo := mobiletel.Cycle(5)
	if _, err := mobiletel.SpreadRumor(mobiletel.Static(topo), mobiletel.PushPull, nil, mobiletel.Options{}); err == nil {
		t.Fatal("empty sources accepted")
	}
	if _, err := mobiletel.SpreadRumor(mobiletel.Static(topo), mobiletel.PushPull, []int{9}, mobiletel.Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestTopologyMetadata(t *testing.T) {
	topo := mobiletel.Clique(10)
	if topo.N() != 10 || topo.MaxDegree() != 9 || !topo.AlphaExact() {
		t.Fatalf("clique metadata wrong: n=%d Δ=%d", topo.N(), topo.MaxDegree())
	}
	if topo.Name() != "clique" {
		t.Fatalf("name %q", topo.Name())
	}
	los := mobiletel.SqrtLineOfStars(4)
	if los.Alpha() >= topo.Alpha() {
		t.Fatal("line of stars should have smaller alpha than clique")
	}
}

func TestScheduleMetadata(t *testing.T) {
	topo := mobiletel.Cycle(12)
	s := mobiletel.Permuted(topo, 5, 1)
	if s.Tau() != 5 {
		t.Fatalf("tau %d", s.Tau())
	}
	if !strings.Contains(s.Name(), "permuted") {
		t.Fatalf("name %q", s.Name())
	}
}

func TestMergeSchedule(t *testing.T) {
	topo := mobiletel.Clique(16)
	a := mobiletel.Permuted(topo, 1, 3)
	b := mobiletel.Static(topo)
	m := mobiletel.Merge(a, b, 50)
	res, err := mobiletel.ElectLeader(m, mobiletel.AsyncBitConv, mobiletel.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Fatal("no rounds")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, algo := range []mobiletel.Algorithm{mobiletel.BlindGossip, mobiletel.BitConv, mobiletel.AsyncBitConv} {
		parsed, err := mobiletel.ParseAlgorithm(algo.String())
		if err != nil || parsed != algo {
			t.Fatalf("roundtrip failed for %v", algo)
		}
	}
	if _, err := mobiletel.ParseAlgorithm("nonsense"); err == nil {
		t.Fatal("nonsense algorithm accepted")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	infos := mobiletel.Experiments()
	if len(infos) != 19 {
		t.Fatalf("expected 19 experiments, got %d", len(infos))
	}
	for _, info := range infos {
		if info.ID == "" || info.Claim == "" {
			t.Fatalf("incomplete info: %+v", info)
		}
	}
}

func TestRunExperimentTextAndCSV(t *testing.T) {
	text, err := mobiletel.RunExperiment("E4-lemma-v1-gamma",
		mobiletel.ExperimentOptions{Seed: 1, Trials: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Lemma V.1") {
		t.Fatalf("unexpected table:\n%s", text)
	}
	csvOut, err := mobiletel.RunExperiment("E4-lemma-v1-gamma",
		mobiletel.ExperimentOptions{Seed: 1, Trials: 3, Quick: true, CSV: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut, ",") || strings.Contains(csvOut, "==") {
		t.Fatalf("not CSV:\n%s", csvOut)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := mobiletel.RunExperiment("bogus", mobiletel.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestElectLeaderWithFaults runs an election under crash/recover churn and
// message loss: the stop condition quantifies over up devices only, and the
// whole run stays deterministic per (seed, fault plan).
func TestElectLeaderWithFaults(t *testing.T) {
	topo := mobiletel.RandomRegular(48, 6, 11)
	opts := mobiletel.Options{
		Seed: 5,
		Faults: &mobiletel.FaultPlan{
			Seed:           51,
			CrashRate:      0.02,
			RecoverRate:    0.3,
			MaxDown:        6,
			ResetOnRecover: true,
			ProposalLoss:   0.1,
			ConnLoss:       0.05,
		},
	}
	run := func() mobiletel.ElectionResult {
		res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.AsyncBitConv, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds < 1 || a.Leader == 0 {
		t.Fatalf("implausible faulted result: %+v", a)
	}
	if a.Leader != b.Leader || a.Rounds != b.Rounds || a.Connections != b.Connections {
		t.Fatalf("faulted run nondeterministic: %+v vs %+v", a, b)
	}
}

// TestElectLeaderScheduledCrash crashes one specific device and checks the
// election completes among the survivors (the stop condition must not wait
// for the crashed device's stale state).
func TestElectLeaderScheduledCrash(t *testing.T) {
	topo := mobiletel.Clique(16)
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{
			Seed: 2,
			Faults: &mobiletel.FaultPlan{
				Seed:    21,
				Crashes: []mobiletel.FaultEvent{{Round: 1, Device: 3}},
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Fatalf("implausible result: %+v", res)
	}
}

// TestRunExperimentCheckpointResume kills nothing but runs the same
// experiment twice against one checkpoint directory: the second run replays
// every trial and must render the identical table.
func TestRunExperimentCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	opts := mobiletel.ExperimentOptions{Seed: 1, Trials: 2, Quick: true, CheckpointDir: dir}
	first, err := mobiletel.RunExperiment("E6-bitconv-tau", opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := mobiletel.RunExperiment("E6-bitconv-tau", opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", first, second)
	}
	// A different seed against the same checkpoint is a stale-checkpoint
	// error, not silent reuse of wrong results.
	bad := opts
	bad.Seed = 2
	if _, err := mobiletel.RunExperiment("E6-bitconv-tau", bad); err == nil {
		t.Fatal("stale checkpoint (different seed) accepted")
	}
}

// TestRunExperimentInterrupt aborts a run via an already-closed Interrupt
// channel and checks the sentinel error surfaces through the facade.
func TestRunExperimentInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	_, err := mobiletel.RunExperiment("E6-bitconv-tau",
		mobiletel.ExperimentOptions{Seed: 1, Trials: 2, Quick: true, Interrupt: interrupt})
	if !errors.Is(err, mobiletel.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestAsyncActivations(t *testing.T) {
	topo := mobiletel.RandomRegular(32, 4, 9)
	acts := make([]int, 32)
	for i := range acts {
		acts[i] = 1 + (i*13)%100
	}
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.AsyncBitConv,
		mobiletel.Options{Seed: 8, Activations: acts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 100 {
		t.Fatalf("stabilized at %d, before last activation", res.Rounds)
	}
}

func TestBarabasiAlbertTopology(t *testing.T) {
	topo := mobiletel.BarabasiAlbert(128, 3, 5)
	if topo.N() != 128 || topo.MaxDegree() < 6 {
		t.Fatalf("BA metadata: n=%d Δ=%d", topo.N(), topo.MaxDegree())
	}
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip, mobiletel.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Fatal("no rounds")
	}
}

func TestElectLeaderRecording(t *testing.T) {
	var buf strings.Builder
	topo := mobiletel.Cycle(12)
	res, err := mobiletel.ElectLeader(mobiletel.Static(topo), mobiletel.BlindGossip,
		mobiletel.Options{Seed: 3, RecordTo: &buf})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"schedule\":\"static/cycle\"") {
		t.Fatalf("recording header missing: %q", out[:min(120, len(out))])
	}
	// One header line plus one line per round.
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines != res.Rounds+1 {
		t.Fatalf("recording has %d lines, want %d", lines, res.Rounds+1)
	}
}
